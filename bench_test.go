// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7). Each BenchmarkFigureNN runs the corresponding
// experiment end-to-end on the simulated testbed and reports the key
// reproduced metrics through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the runtime cost and the paper-shape numbers. The quick
// configuration is used so the full suite stays minutes-scale; run
// cmd/tango-bench -full for the paper-scale version.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hrm"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// benchCfg is a trimmed quick configuration so `go test -bench=.`
// finishes in minutes.
func benchCfg() experiments.Config {
	return experiments.Config{
		Seed: 1, Duration: 6 * time.Second, Drain: 4 * time.Second,
		LCRate: 40, BERate: 15, VirtualClusters: 3,
	}
}

func reportValues(b *testing.B, r *experiments.Result, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := r.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + r.String())
	}
}

// BenchmarkFigure01Measurement — Figure 1: LC-only deployment shows low
// utilization with ~300 ms-class latencies.
func BenchmarkFigure01Measurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchCfg())
		reportValues(b, r, "mean_util", "mean_latency_ms")
	}
}

// BenchmarkFigure09HRM — Figure 9: HRM vs native K8s utilization under
// P1/P2/P3.
func BenchmarkFigure09HRM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchCfg())
		reportValues(b, r, "P3_K8s+HRM_util", "P3_K8s-native_util")
	}
}

// BenchmarkDVPAScalingOp — §7.1: one D-VPA resize vs the native VPA's
// delete-and-rebuild (~100x).
func BenchmarkDVPAScalingOp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.DVPAMicro(benchCfg())
		reportValues(b, r, "dvpa_ms", "native_ms", "ratio")
	}
}

// BenchmarkFigure10ReAssurance — Figure 10: QoS re-assurance on/off.
func BenchmarkFigure10ReAssurance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchCfg())
		reportValues(b, r, "P1_qos_with", "P1_qos_without")
	}
}

// BenchmarkFigure11DSSLC — Figure 11(a,b): LC scheduling algorithms.
func BenchmarkFigure11DSSLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11ab(benchCfg())
		reportValues(b, r, "DSS-LC_qos", "k8s-native_qos", "DSS-LC_abandoned")
	}
}

// BenchmarkDSSLCDecision500 — §7.2: DSS-LC decision latency at 500 nodes
// (paper: 1.99 ms).
func BenchmarkDSSLCDecision500(b *testing.B) {
	benchDecision(b, 500)
}

// BenchmarkDSSLCDecision1000 — §7.2: DSS-LC decision latency at 1000
// nodes (paper: 3.98 ms).
func BenchmarkDSSLCDecision1000(b *testing.B) {
	benchDecision(b, 1000)
}

func benchDecision(b *testing.B, nodes int) {
	var ms float64
	for i := 0; i < b.N; i++ {
		r := experiments.DecisionTime(benchCfg(), func(f func()) time.Duration {
			start := time.Now()
			f()
			return time.Since(start)
		})
		ms = r.Values["decision_ms_"+itoa(nodes)]
	}
	b.ReportMetric(ms, "decision_ms")
}

func itoa(n int) string {
	if n == 500 {
		return "500"
	}
	return "1000"
}

// BenchmarkFigure11DCGBE — Figure 11(c): BE scheduling algorithms.
func BenchmarkFigure11DCGBE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11c(benchCfg())
		reportValues(b, r, "DCG-BE_tput", "GNN-SAC_tput", "k8s-native_tput")
	}
}

// BenchmarkFigure11GNN — Figure 11(d): GNN structure ablation.
func BenchmarkFigure11GNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11d(benchCfg())
		reportValues(b, r, "GraphSAGE-A2C", "GCN-A2C", "GAT-A2C", "Native-A2C")
	}
}

// BenchmarkFigure12Pairing — Figure 12: the 4x4 algorithm pairing matrix.
func BenchmarkFigure12Pairing(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 4 * time.Second // 16 systems per iteration
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(cfg)
		reportValues(b, r, "DSS-LC+DCG-BE_qos", "DSS-LC+DCG-BE_tput", "k8s-native+k8s-native_qos")
	}
}

// BenchmarkFigure13LargeScale — Figure 13: Tango vs CERES vs DSACO on
// the dual-space hybrid deployment.
func BenchmarkFigure13LargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchCfg())
		reportValues(b, r, "Tango_util", "CERES_util", "Tango_qos", "DSACO_qos", "Tango_tput", "CERES_tput")
	}
}

// BenchmarkExtensionFailover — extension experiment: mid-run worker
// failures with re-dispatch.
func BenchmarkExtensionFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Failover(benchCfg())
		reportValues(b, r, "qos_clean", "qos_failures", "qos_trough")
	}
}

// BenchmarkExtensionScalability — extension experiment: DSS-LC decision
// time sweep from 100 to 2000 nodes.
func BenchmarkExtensionScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Scalability(benchCfg(), func(f func()) time.Duration {
			start := time.Now()
			f()
			return time.Since(start)
		})
		reportValues(b, r, "ms_100", "ms_500", "ms_1000", "ms_2000")
	}
}

// BenchmarkAblationMasking — DESIGN.md ablation: DCG-BE's policy context
// filtering on/off.
func BenchmarkAblationMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMasking(benchCfg())
		reportValues(b, r, "tput_masking_on", "tput_masking_off")
	}
}

// BenchmarkAblationReward — DESIGN.md ablation: r_short + η·r_long vs
// short-term-only reward.
func BenchmarkAblationReward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationReward(benchCfg())
		reportValues(b, r, "tput_eta_1", "tput_eta_0")
	}
}

// BenchmarkAblationPreemption — DESIGN.md ablation: §4.1 preemption
// on/off.
func BenchmarkAblationPreemption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPreemption(benchCfg())
		reportValues(b, r, "qos_preempt_on", "qos_preempt_off")
	}
}

// ---- tracing overhead ----
//
// The three BenchmarkEngineTrace* variants run the identical engine
// workload with tracing disabled (nil tracer), enabled into the
// discarding NullSink, and enabled into a RingSink. Comparing TraceOff
// and TraceNull bounds the cost the obs hooks add to the hot path; the
// contract is ≤2% time and zero extra allocations per op.

// benchEngineTrace runs ~500 mixed requests per iteration through a bare
// engine on the physical testbed, dispatched round-robin over the
// workers. The tracer is built once, outside the timed loop, and reads
// the clock of whichever simulator is currently running, so per-op allocs
// measure only the emission path.
func benchEngineTrace(b *testing.B, sink obs.Sink) {
	tp := topo.PhysicalTestbed()
	cat := trace.DefaultCatalog()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 4*time.Second, 1)
	gen.LCRatePerSec = 90
	gen.BERatePerSec = 35
	reqs := trace.Generate(gen)

	var cur *sim.Simulator
	var tr *obs.Tracer
	if sink != nil {
		tr = obs.NewTracer(func() time.Duration { return cur.Now() }, sink)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		cur = s
		eng := engine.New(engine.Config{
			Sim: s, Topo: tp, Catalog: cat, Policy: hrm.NewRegulations(),
			ScaleLatency: 23 * time.Millisecond, LCAbandonFactor: 3,
			Tracer: tr,
		})
		workers := eng.Nodes()
		for j, r := range reqs {
			req := eng.NewRequest(r)
			w := workers[j%len(workers)]
			s.Schedule(r.Arrival, func() { eng.Dispatch(req, w.ID) })
		}
		s.Run()
		if eng.Completed == 0 {
			b.Fatal("workload completed nothing")
		}
	}
}

func BenchmarkEngineTraceOff(b *testing.B)  { benchEngineTrace(b, nil) }
func BenchmarkEngineTraceNull(b *testing.B) { benchEngineTrace(b, obs.NullSink{}) }
func BenchmarkEngineTraceRing(b *testing.B) { benchEngineTrace(b, obs.NewRingSink(4096)) }
