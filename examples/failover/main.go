// Failover: failure injection on the edge. Half-way through a mixed
// workload, two worker nodes of the hottest cluster fail; their running
// and queued requests are displaced back to the masters and Tango's
// dispatchers route around the dead nodes (DSS-LC drops them from the
// MCNF graph, DCG-BE masks them out of the policy). The nodes recover
// later and traffic flows back.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 24*time.Second, 5)
	gen.LCRatePerSec = 80
	gen.BERatePerSec = 30
	gen.ClusterWeights = []float64{4, 1, 1, 1} // cluster 0 is hot
	reqs := trace.Generate(gen)

	sys := core.New(core.Tango(tp, 5))
	sys.Inject(reqs)

	// Fail two of the hot cluster's four workers during the middle third.
	victims := tp.Cluster(0).Workers[:2]
	for _, v := range victims {
		sys.FailNode(v, 8*time.Second)
		sys.RecoverNode(v, 16*time.Second)
	}
	fmt.Printf("failing workers %v at t=8s, recovering at t=16s\n\n", victims)

	sys.Run(30 * time.Second)

	m := sys.Metrics
	tb := metrics.NewTable("result", "metric", "value")
	tb.AddRowF("LC arrived", m.LC.Arrived)
	tb.AddRowF("LC satisfied", m.LC.Satisfied)
	tb.AddRowF("QoS rate", m.LC.Rate())
	tb.AddRowF("abandoned", m.LC.Abandoned)
	tb.AddRowF("BE completed", m.BE.Completed)
	fmt.Println(tb.String())

	st := metrics.NewTable("QoS per 800ms period (failure window = periods 10..20)",
		"period", "qos", "util %")
	for i := range m.QoSRateSeries.Values {
		st.AddRowF(i, m.QoSRateSeries.Values[i], m.UtilSeries.Values[i]*100)
	}
	fmt.Println(st.String())
}
