// Colocation: the Figure 9/10 scenario as a library example. It runs the
// same bursty mixed workload twice — once on native Kubernetes (static
// per-class partitions, round-robin traffic) and once with Tango's HRM
// (regulations + D-VPA + boost + re-assurance) — and prints the
// side-by-side utilization and QoS numbers, plus a short period-by-period
// view showing BE expanding into idle resources and yielding to LC peaks.
package main

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hrm"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}

	// P1: LC arrives in periodic bursts, BE randomly — the pattern where
	// elasticity matters most.
	gen := trace.DefaultGenConfig(clusters, trace.P1, 20*time.Second, 7)
	gen.LCRatePerSec = 120
	gen.BERatePerSec = 90 // standing BE backlog to soak the valleys
	reqs := trace.Generate(gen)

	runOne := func(name string, opts core.Options) *core.System {
		sys := core.New(opts)
		sys.Inject(reqs)
		sys.Run(26 * time.Second)
		return sys
	}

	hrmOpts := core.Tango(tp, 7)
	hrmOpts.CentralBE = false // keep scheduling identical; compare allocation only
	hrmOpts.MakeLC = nil      // DSS-LC default
	withHRM := runOne("K8s+HRM", hrmOpts)
	native := runOne("K8s-native", baselines.K8sNative(tp, reqs, 7))

	tb := metrics.NewTable("HRM vs native K8s (pattern P1)",
		"system", "overall util %", "LC util %", "BE util %", "QoS rate", "BE done", "abandoned")
	for _, e := range []struct {
		name string
		sys  *core.System
	}{{"K8s+HRM", withHRM}, {"K8s-native", native}} {
		m := e.sys.Metrics
		tb.AddRowF(e.name, m.UtilSeries.Mean()*100, m.LCUtilSeries.Mean()*100,
			m.BEUtilSeries.Mean()*100, m.LC.Rate(), m.BE.Completed, m.LC.Abandoned)
	}
	fmt.Println(tb.String())

	// Show the harmonious allocation over time: during LC bursts the BE
	// share shrinks (preemption), in the valleys it expands (boost).
	st := metrics.NewTable("K8s+HRM allocation over time (800ms periods)",
		"period", "LC util %", "BE util %", "QoS")
	m := withHRM.Metrics
	for i := 0; i < len(m.LCUtilSeries.Values) && i < 16; i++ {
		st.AddRowF(i, m.LCUtilSeries.Values[i]*100, m.BEUtilSeries.Values[i]*100,
			m.QoSRateSeries.Values[i])
	}
	fmt.Println(st.String())

	fmt.Printf("D-VPA scaling op: %v per resize, no container restart "+
		"(native VPA delete-and-rebuild: ~%v).\n",
		hrm.DVPAOpLatency, 2400*time.Millisecond)
}
