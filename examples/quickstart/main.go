// Quickstart: build the paper's 4-cluster physical testbed, run Tango
// over a mixed LC/BE workload and print the outcome. This is the
// smallest end-to-end use of the public API:
//
//	topology  -> topo.PhysicalTestbed()
//	workload  -> trace.Generate(...)
//	system    -> core.New(core.Tango(...))
//	run       -> sys.Inject(reqs); sys.Run(until)
//	results   -> sys.Summarize(...) and sys.Metrics
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	// 1. The edge-cloud system: 4 clusters, each 1 master + 4 workers.
	tp := topo.PhysicalTestbed()

	// 2. A 15-second mixed workload: both classes arrive randomly (P3).
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	cfg := trace.DefaultGenConfig(clusters, trace.P3, 15*time.Second, 42)
	cfg.LCRatePerSec = 60
	cfg.BERatePerSec = 25
	reqs := trace.Generate(cfg)

	// 3. Tango: HRM allocation + D-VPA + re-assurance, DSS-LC for LC
	//    traffic and DCG-BE for BE traffic.
	sys := core.New(core.Tango(tp, 42))

	// 4. Run on virtual time: inject arrivals, simulate, drain.
	sys.Inject(reqs)
	sys.Run(20 * time.Second)

	// 5. Read the results.
	s := sys.Summarize("tango")
	fmt.Printf("requests:        %d LC + %d BE\n", sys.Metrics.LC.Arrived, sys.Metrics.BE.Arrived)
	fmt.Printf("QoS rate:        %.1f%% of LC requests met their tail-latency target\n", s.QoSRate*100)
	fmt.Printf("BE throughput:   %d requests completed\n", s.Throughput)
	fmt.Printf("mean utilization %.1f%%\n", s.MeanUtil*100)
	fmt.Printf("mean LC latency  %.0f ms\n", s.MeanLCLatMs)
	fmt.Printf("abandoned LC:    %d\n", s.Abandoned)
}
