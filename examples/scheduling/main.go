// Scheduling: the Figure 11 scenario as a library example — compare the
// LC traffic schedulers (DSS-LC vs scoring vs load-greedy vs the
// k8s-native round-robin) and the BE schedulers (DCG-BE vs GNN-SAC vs
// load-greedy vs round-robin) under one uneven, fluctuating workload.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dcgbe"
	"repro/internal/dsslc"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	tp := topo.PhysicalTestbed()
	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.P3, 16*time.Second, 11)
	gen.LCRatePerSec = 220 // pressure so scheduling quality matters
	gen.BERatePerSec = 60
	// Uneven geographic load: one hot cluster.
	gen.ClusterWeights = []float64{6, 1, 1, 1}
	reqs := trace.Generate(gen)

	run := func(mkLC, mkBE func(e *engine.Engine, seed int64) any) core.Summary {
		o := core.Tango(tp, 11)
		o.MakeLC = mkLC
		o.MakeBE = mkBE
		sys := core.New(o)
		sys.Inject(reqs)
		sys.Run(22 * time.Second)
		return sys.Summarize("")
	}

	rr := func(e *engine.Engine, seed int64) any { return &sched.RoundRobin{} }

	fmt.Println("LC scheduler comparison (BE fixed to round-robin):")
	lcT := metrics.NewTable("", "LC algorithm", "QoS rate", "mean latency ms", "abandoned")
	for _, mk := range []func(e *engine.Engine, seed int64) any{
		func(e *engine.Engine, seed int64) any { return dsslc.New(e, seed) },
		func(e *engine.Engine, seed int64) any { return sched.NewScoring(e.Topology()) },
		func(e *engine.Engine, seed int64) any { return sched.LoadGreedy{} },
		rr,
	} {
		s := run(mk, rr)
		lcT.AddRowF(s.LCSched, s.QoSRate, s.MeanLCLatMs, s.Abandoned)
	}
	fmt.Println(lcT.String())

	fmt.Println("BE scheduler comparison (LC fixed to round-robin):")
	beT := metrics.NewTable("", "BE algorithm", "BE throughput")
	for _, mk := range []func(e *engine.Engine, seed int64) any{
		func(e *engine.Engine, seed int64) any { return dcgbe.New(e, seed) },
		func(e *engine.Engine, seed int64) any {
			return dcgbe.NewVariant(e, dcgbe.Variant{Agent: "sac"}, seed)
		},
		func(e *engine.Engine, seed int64) any { return sched.LoadGreedy{} },
		rr,
	} {
		s := run(rr, mk)
		beT.AddRowF(s.BESched, s.Throughput)
	}
	fmt.Println(beT.String())
}
