// Largescale: the Figure 13 scenario as a library example — a dual-space
// hybrid deployment (the 4 physical clusters plus generated virtual
// clusters, heterogeneous 3–20-worker clusters as in §6.1) running Tango
// against the CERES and DSACO comparison systems under a diurnal trace.
//
// Run with a larger -virtual for the paper's full 104-cluster setup.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	virtual := flag.Int("virtual", 16, "number of virtual clusters (paper: 100)")
	duration := flag.Duration("duration", 16*time.Second, "workload duration")
	flag.Parse()

	tp := topo.DualSpace(*virtual, 3)
	workers := 0
	for _, n := range tp.Nodes {
		if n.Role == topo.Worker {
			workers++
		}
	}
	fmt.Printf("dual-space: %d clusters (%d virtual), %d worker nodes, central cluster %d\n\n",
		len(tp.Clusters), *virtual, workers, tp.CentralCluster().ID)

	var clusters []topo.ClusterID
	for _, c := range tp.Clusters {
		clusters = append(clusters, c.ID)
	}
	gen := trace.DefaultGenConfig(clusters, trace.Diurnal, *duration, 3)
	// Scale arrivals with the fleet size.
	gen.LCRatePerSec = float64(workers) * 3
	gen.BERatePerSec = float64(workers) * 1.2
	reqs := trace.Generate(gen)
	fmt.Printf("workload: %d requests over %v\n\n", len(reqs), *duration)

	tb := metrics.NewTable("Tango vs CERES vs DSACO",
		"system", "util %", "QoS rate", "BE throughput", "abandoned", "wall time")
	for _, e := range []struct {
		name string
		opts core.Options
	}{
		{"Tango", core.Tango(tp, 3)},
		{"CERES", baselines.CERES(tp, 3)},
		{"DSACO", baselines.DSACO(tp, 3)},
	} {
		start := time.Now()
		sys := core.New(e.opts)
		sys.Inject(reqs)
		sys.Run(*duration + 8*time.Second)
		m := sys.Metrics
		tb.AddRowF(e.name, m.UtilSeries.Mean()*100, m.LC.Rate(), m.BE.Completed,
			m.LC.Abandoned, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println(tb.String())
	fmt.Println("paper's reported deltas: +36.9% utilization vs CERES, " +
		"+11.3% QoS vs DSACO, +47.6% throughput vs CERES")
}
