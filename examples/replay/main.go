// Replay: drive Tango from external artifacts instead of built-ins — a
// hand-authored topology (JSON) and a workload trace (CSV, the tracegen
// format). This is the integration path for replaying real traces:
//
//	go run ./cmd/tracegen -duration 20s -clusters 3 > /tmp/trace.csv
//	go run ./examples/replay -trace /tmp/trace.csv
//
// Without flags it generates both artifacts in-memory, round-trips them
// through their serialized forms, and runs the system — demonstrating
// that the serialization layer carries everything the scheduler needs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "CSV trace file (default: generate and round-trip one)")
	topoPath := flag.String("topo", "", "JSON topology file (default: built-in testbed, round-tripped)")
	flag.Parse()

	// Topology: load or round-trip the built-in one through JSON.
	var tp *topo.Topology
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		fatal(err)
		tp, err = topo.ReadJSON(f)
		fatal(err)
		_ = f.Close()
	} else {
		var buf bytes.Buffer
		fatal(topo.PhysicalTestbed().WriteJSON(&buf))
		var err error
		tp, err = topo.ReadJSON(&buf)
		fatal(err)
		fmt.Println("topology: built-in 4-cluster testbed, round-tripped through JSON")
	}

	// Trace: load or round-trip a generated one through CSV.
	var reqs []trace.Request
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		fatal(err)
		reqs, err = trace.ReadCSV(f, nil)
		fatal(err)
		_ = f.Close()
	} else {
		var cs []topo.ClusterID
		for _, c := range tp.Clusters {
			cs = append(cs, c.ID)
		}
		gen := trace.DefaultGenConfig(cs, trace.P3, 12*time.Second, 99)
		gen.LCRatePerSec, gen.BERatePerSec = 50, 20
		var buf bytes.Buffer
		fatal(trace.WriteCSV(&buf, trace.Generate(gen)))
		var err error
		reqs, err = trace.ReadCSV(&buf, nil)
		fatal(err)
		fmt.Println("trace: generated P3 workload, round-tripped through CSV")
	}
	// Clamp cluster IDs from external traces to the topology.
	n := len(tp.Clusters)
	for i := range reqs {
		if int(reqs[i].Cluster) >= n {
			reqs[i].Cluster = topo.ClusterID(int(reqs[i].Cluster) % n)
		}
	}
	fmt.Printf("replaying %d requests over %d clusters\n\n", len(reqs), n)

	sys := core.New(core.Tango(tp, 99))
	sys.Inject(reqs)
	end := reqs[len(reqs)-1].Arrival + 10*time.Second
	sys.Run(end)

	s := sys.Summarize("replay")
	fmt.Printf("QoS rate        %.3f\n", s.QoSRate)
	fmt.Printf("BE throughput   %d\n", s.Throughput)
	fmt.Printf("mean util       %.1f%%\n", s.MeanUtil*100)
	fmt.Printf("abandoned       %d\n", s.Abandoned)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
